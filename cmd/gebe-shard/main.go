// Command gebe-shard partitions a trained embedding into N item-shard
// files for the scatter/gather serving topology (cmd/gebe-coord): each
// output carries the full user matrix plus one contiguous slice of item
// rows, stamped with a "#meta shard" line so a gebe-serve process loads
// it knowing exactly which global rows it holds.
//
// Usage:
//
//	gebe-shard -emb emb.tsv -shards 4 -out emb-shard
//
// writes emb-shard.0.tsv … emb-shard.3.tsv. The split is deterministic
// (row ranges from shard.NewPartition), so re-sharding the same file
// always produces byte-identical outputs. Every shard serves from the
// SAME training file as the unsharded server would — exclusion masking
// is sliced at load time, not here.
package main

import (
	"flag"
	"fmt"
	"os"

	"gebe"
	"gebe/internal/shard"
)

func main() {
	var (
		embP  = flag.String("emb", "", "embedding file from cmd/gebe (required)")
		count = flag.Int("shards", 2, "number of item shards to produce")
		outP  = flag.String("out", "", "output prefix; writes <out>.<i>.tsv (required)")
		quiet = flag.Bool("q", false, "suppress the per-shard summary lines")
	)
	flag.Parse()
	if *embP == "" || *outP == "" {
		fmt.Fprintln(os.Stderr, "gebe-shard: -emb and -out are required")
		flag.Usage()
		os.Exit(2)
	}
	emb, err := gebe.LoadEmbedding(*embP)
	if err != nil {
		fail(err)
	}
	if emb.Sharded() {
		fail(fmt.Errorf("%s is already a shard (%d/%d); shard the original embedding", *embP, emb.ShardIndex, emb.ShardCount))
	}
	p, err := shard.NewPartition(emb.V.Rows, *count)
	if err != nil {
		fail(err)
	}
	for i := 0; i < *count; i++ {
		slice := shard.Slice(emb, p, i)
		path := fmt.Sprintf("%s.%d.tsv", *outP, i)
		if err := gebe.SaveEmbedding(path, slice); err != nil {
			fail(err)
		}
		if !*quiet {
			lo, hi := p.Range(i)
			fmt.Fprintf(os.Stderr, "gebe-shard: %s holds items [%d,%d) of %d (%d users x %d items x k=%d)\n",
				path, lo, hi, emb.V.Rows, slice.U.Rows, slice.V.Rows, slice.K())
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "gebe-shard:", err)
	os.Exit(1)
}
