// Command gebe-eval evaluates a saved embedding on the paper's two
// downstream tasks.
//
// Top-N recommendation (train/test edge lists produced by any split):
//
//	gebe-eval -task topn -train train.tsv -test test.tsv -emb emb.tsv -n 10
//
// Link prediction (full graph + residual training graph + removed edges):
//
//	gebe-eval -task linkpred -full graph.tsv -train train.tsv -test test.tsv -emb emb.tsv
//
// Node identifiers in the edge lists must densify to the same index
// space the embedding was trained on (i.e., come from the same files).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gebe"
	"gebe/internal/bigraph"
	"gebe/internal/eval"
	"gebe/internal/obs"
)

func main() {
	var (
		task     = flag.String("task", "topn", "topn | linkpred")
		trainP   = flag.String("train", "", "training edge list")
		testP    = flag.String("test", "", "held-out edge list")
		fullP    = flag.String("full", "", "full edge list (linkpred negatives)")
		embP     = flag.String("emb", "", "embedding file from cmd/gebe")
		n        = flag.Int("n", 10, "top-N cutoff")
		seed     = flag.Uint64("seed", 1, "random seed (negative sampling)")
		threads  = flag.Int("threads", 4, "ranking threads")
		features = flag.String("features", "concat", "linkpred features: concat | hadamard | both")
		ddl      = flag.Duration("deadline", 0, "cooperative wall-clock budget for the evaluation (0 = unlimited)")
	)
	cli := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if *trainP == "" || *testP == "" || *embP == "" {
		fmt.Fprintln(os.Stderr, "gebe-eval: -train, -test and -emb are required")
		flag.Usage()
		os.Exit(2)
	}
	stop, err := cli.Start("gebe-eval")
	if err != nil {
		fail(err)
	}
	defer stop()
	if cli.Active() {
		eval.EnableMetrics(obs.DefaultRegistry())
	}
	train, err := gebe.LoadGraph(*trainP)
	if err != nil {
		fail(err)
	}
	emb, err := gebe.LoadEmbedding(*embP)
	if err != nil {
		fail(err)
	}
	if emb.U.Rows < train.NU || emb.V.Rows < train.NV {
		fail(fmt.Errorf("embedding covers %dx%d nodes but training graph has %dx%d",
			emb.U.Rows, emb.V.Rows, train.NU, train.NV))
	}
	test, err := loadTestEdges(*testP, train)
	if err != nil {
		fail(err)
	}
	var deadline time.Time
	if *ddl > 0 {
		deadline = time.Now().Add(*ddl)
	}

	switch *task {
	case "topn":
		res, err := eval.TopNRun(train, test, emb.U, emb.V,
			eval.TopNConfig{N: *n, Threads: *threads, Deadline: deadline})
		if res.Skipped > 0 {
			fmt.Fprintf(os.Stderr, "gebe-eval: skipped %d test edges outside the training graph\n", res.Skipped)
		}
		if err != nil {
			fail(err)
		}
		fmt.Printf("users=%d F1@%d=%.4f NDCG@%d=%.4f MRR@%d=%.4f\n",
			res.Users, *n, res.F1, *n, res.NDCG, *n, res.MRR)
	case "linkpred":
		if *fullP == "" {
			fail(fmt.Errorf("linkpred requires -full"))
		}
		full, err := gebe.LoadGraph(*fullP)
		if err != nil {
			fail(err)
		}
		mode := eval.FeatureConcat
		switch *features {
		case "hadamard":
			mode = eval.FeatureHadamard
		case "both":
			mode = eval.FeatureConcatHadamard
		case "concat":
		default:
			fail(fmt.Errorf("unknown feature mode %q", *features))
		}
		res, err := eval.LinkPred(full, train, test, emb.U, emb.V,
			eval.LinkPredOptions{Seed: *seed, Features: mode, Deadline: deadline})
		if err != nil {
			fail(err)
		}
		fmt.Printf("AUC-ROC=%.4f AUC-PR=%.4f\n", res.AUCROC, res.AUCPR)
	default:
		fail(fmt.Errorf("unknown task %q", *task))
	}
}

// loadTestEdges parses the held-out edge list reusing the training
// graph's label tables so indices line up.
func loadTestEdges(path string, train *gebe.Graph) ([]bigraph.Edge, error) {
	g, err := gebe.LoadGraph(path)
	if err != nil {
		return nil, err
	}
	if train.ULabels == nil || g.ULabels == nil {
		// Pure-index graphs: indices are already aligned.
		return g.Edges, nil
	}
	uIdx := make(map[string]int, train.NU)
	for i, l := range train.ULabels {
		uIdx[l] = i
	}
	vIdx := make(map[string]int, train.NV)
	for i, l := range train.VLabels {
		vIdx[l] = i
	}
	var out []bigraph.Edge
	for _, e := range g.Edges {
		u, okU := uIdx[g.ULabels[e.U]]
		v, okV := vIdx[g.VLabels[e.V]]
		if !okU || !okV {
			continue // node unseen in training — no embedding to rank with
		}
		out = append(out, bigraph.Edge{U: u, V: v, W: e.W})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no test edge maps onto the training node universe")
	}
	return out, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "gebe-eval:", err)
	os.Exit(1)
}
