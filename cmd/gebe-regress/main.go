// Command gebe-regress is the performance regression gate: it compares
// a fresh performance record against a committed baseline and exits
// non-zero when a metric regressed beyond both the relative threshold
// and the absolute floor. It reads the record kinds this repo produces
// — serve latency snapshots (results/SERVE_LATENCY.json, written by
// gebe-serve -latency-out), experiment run manifests (RUN_<exp>.json,
// written by gebe-bench -manifest-dir), and gebe-bench microbench
// reports (BENCH_SPMM/DENSE/ANN.json, written by gebe-bench
// -kernels/-dense/-ann -json) — detecting the kind from the file
// contents. Kernel grids are machine-normalized through their legacy
// timings before gating, and additionally gate the vector kernels'
// best-in-class SIMD-over-Go speedup against -simd-floor; ANN reports
// additionally gate recall@10 against -recall-floor and the full-probe
// bitwise contract.
//
//	gebe-regress -old results/SERVE_LATENCY.json -new /tmp/fresh.json \
//	    -ratio 5 -min-delta 25ms
//	gebe-regress -old results/BENCH_ANN.json -new /tmp/BENCH_ANN.json \
//	    -ratio 1.0 -recall-floor 0.95
//
// Exit codes: 0 gate passed, 1 regression found, 2 usage or I/O error.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gebe/internal/regress"
)

func main() {
	var (
		oldPath  = flag.String("old", "", "baseline record (latency snapshot or run manifest)")
		newPath  = flag.String("new", "", "fresh record of the same kind")
		ratio    = flag.Float64("ratio", 0.5, "allowed fractional increase (0.5 = +50%)")
		minDelta = flag.Duration("min-delta", 25*time.Millisecond, "absolute increase floor; smaller deltas never fail")
		minCount = flag.Uint64("min-count", 1, "skip endpoints with fewer samples on either side")
		recall   = flag.Float64("recall-floor", 0.95, "minimum recall@10 at the default probe (ann reports only)")
		simd     = flag.Float64("simd-floor", 1.3, "minimum best-in-class SIMD-over-Go kernel speedup for the k16 and panel8 width classes (bench reports only; 0 disables)")
	)
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "gebe-regress: -old and -new are required")
		flag.Usage()
		os.Exit(2)
	}

	report, err := regress.CompareFiles(*oldPath, *newPath, regress.Options{
		Ratio:       *ratio,
		MinDelta:    minDelta.Seconds(),
		MinCount:    *minCount,
		RecallFloor: *recall,
		SIMDFloor:   *simd,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gebe-regress:", err)
		os.Exit(2)
	}
	fmt.Println(report.Summary())
	if !report.OK() {
		os.Exit(1)
	}
}
