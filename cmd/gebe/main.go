// Command gebe trains bipartite network embeddings for an edge-list file
// and writes them as TSV.
//
// Usage:
//
//	gebe -in ratings.tsv -out emb.tsv -k 128 -method gebep
//
// Methods: gebep (default), gebe-poisson, gebe-geometric, gebe-uniform,
// mhp-bne, mhs-bne, plus the re-implemented competitors (deepwalk,
// node2vec, line, nrp, bine, bigi, bpr, ncf, lightgcn, cse).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gebe"
	"gebe/internal/baselines"
	"gebe/internal/core"
	"gebe/internal/dense"
	"gebe/internal/obs"
	"gebe/internal/sparse"
)

func main() {
	var (
		in      = flag.String("in", "", "input edge list (u v [w] per line)")
		out     = flag.String("out", "", "output embedding file (TSV)")
		method  = flag.String("method", "gebep", "embedding method")
		k       = flag.Int("k", 128, "embedding dimensionality")
		lambda  = flag.Float64("lambda", 1, "Poisson rate (gebep / poisson PMFs)")
		alpha   = flag.Float64("alpha", 0.5, "Geometric decay (gebe-geometric)")
		tau     = flag.Int("tau", 20, "max path half-length (GEBE)")
		iters   = flag.Int("t", 200, "max KSI sweeps (GEBE)")
		epsilon = flag.Float64("eps", 0.1, "SVD error threshold (gebep)")
		seed    = flag.Uint64("seed", 1, "random seed")
		threads = flag.Int("threads", 1, "solver threads")
		noScale = flag.Bool("noscale", false, "disable spectral scaling of W")
		ddl     = flag.Duration("deadline", 0, "cooperative wall-clock budget for the solver (0 = unlimited)")
		warm    = flag.String("warm", "", "previous embedding file to warm-start the solve from (GEBE/GEBEP/MHP/MHS)")
	)
	cli := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if *in == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "gebe: -in and -out are required")
		flag.Usage()
		os.Exit(2)
	}
	stop, err := cli.Start("gebe")
	if err != nil {
		fail(err)
	}
	defer stop()
	if cli.Active() {
		sparse.EnableMetrics(obs.DefaultRegistry())
		dense.EnableMetrics(obs.DefaultRegistry())
	}
	g, err := gebe.LoadGraph(*in)
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "loaded %v\n", g.Stats())

	opt := gebe.Options{
		K: *k, Lambda: *lambda, Tau: *tau, Iters: *iters, Epsilon: *epsilon,
		Seed: *seed, Threads: *threads, NoScale: *noScale,
	}
	if *ddl > 0 {
		opt.Deadline = time.Now().Add(*ddl)
	}
	if *warm != "" {
		prev, err := gebe.LoadEmbedding(*warm)
		if err != nil {
			fail(err)
		}
		opt.WarmStart = prev
		fmt.Fprintf(os.Stderr, "warm-starting from %s (%s, %dx%d / %dx%d)\n",
			*warm, prev.Method, prev.U.Rows, prev.U.Cols, prev.V.Rows, prev.V.Cols)
	}
	start := time.Now()
	var emb *gebe.Embedding
	switch *method {
	case "gebep":
		emb, err = gebe.GEBEP(g, opt)
	case "gebe-poisson":
		opt.PMF = gebe.Poisson(*lambda)
		emb, err = gebe.GEBE(g, opt)
	case "gebe-geometric":
		opt.PMF = gebe.Geometric(*alpha)
		emb, err = gebe.GEBE(g, opt)
	case "gebe-uniform":
		opt.PMF = gebe.Uniform(*tau)
		emb, err = gebe.GEBE(g, opt)
	case "mhp-bne":
		emb, err = gebe.MHPBNE(g, opt)
	case "mhs-bne":
		emb, err = gebe.MHSBNE(g, opt)
	default:
		emb, err = trainBaseline(*method, g, *k, *seed, *threads, opt.Deadline)
	}
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "embedded with %s in %.2fs\n", emb.Method, time.Since(start).Seconds())
	if err := gebe.SaveEmbedding(*out, emb); err != nil {
		fail(err)
	}
}

func trainBaseline(name string, g *gebe.Graph, k int, seed uint64, threads int, deadline time.Time) (*gebe.Embedding, error) {
	displayNames := map[string]string{
		"deepwalk": "DeepWalk", "node2vec": "node2vec", "line": "LINE",
		"nrp": "NRP", "bine": "BiNE", "bigi": "BiGI", "bpr": "BPR",
		"ncf": "NCF", "lightgcn": "LightGCN", "cse": "CSE",
	}
	display, ok := displayNames[name]
	if !ok {
		return nil, fmt.Errorf("unknown method %q", name)
	}
	m, err := baselines.ByName(display)
	if err != nil {
		return nil, err
	}
	var u, v *dense.Matrix
	u, v, err = m.Train(g, k, seed, threads, deadline)
	if err != nil {
		return nil, err
	}
	return &core.Embedding{U: u, V: v, Method: name}, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "gebe:", err)
	os.Exit(1)
}
