// Command gebe-sim answers exact MHS/MHP point queries on an edge-list
// graph — the measures of §2.2–2.3 computed without materializing H.
//
// Usage:
//
//	gebe-sim -in graph.tsv -mhs u1,u2          # s(u1,u2), Eq. (4)
//	gebe-sim -in graph.tsv -mhsv v1,v2         # v-side MHS
//	gebe-sim -in graph.tsv -mhp u1,v2          # P[u1,v2], Eq. (5)
//	gebe-sim -in graph.tsv -similar u1 -top 5  # most MHS-similar nodes
//
// Node names are the string identifiers from the edge list. The PMF is
// Poisson(λ) by default; -pmf geometric/-alpha and -pmf uniform are also
// available.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gebe"
	"gebe/internal/core"
	"gebe/internal/dense"
	"gebe/internal/obs"
	"gebe/internal/pmf"
	"gebe/internal/sparse"
)

func main() {
	var (
		in      = flag.String("in", "", "input edge list")
		mhs     = flag.String("mhs", "", "U-side pair 'a,b'")
		mhsv    = flag.String("mhsv", "", "V-side pair 'a,b'")
		mhp     = flag.String("mhp", "", "heterogeneous pair 'u,v'")
		similar = flag.String("similar", "", "U-side node for top similar query")
		top     = flag.Int("top", 5, "result count for -similar")
		pmfName = flag.String("pmf", "poisson", "poisson | geometric | uniform")
		lambda  = flag.Float64("lambda", 1, "Poisson rate")
		alpha   = flag.Float64("alpha", 0.5, "Geometric decay")
		tau     = flag.Int("tau", 20, "path half-length truncation")
		ddl     = flag.Duration("deadline", 0, "cooperative wall-clock budget for the queries (0 = unlimited)")
	)
	cli := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "gebe-sim: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	stop, err := cli.Start("gebe-sim")
	if err != nil {
		fail(err)
	}
	defer stop()
	if cli.Active() {
		sparse.EnableMetrics(obs.DefaultRegistry())
		dense.EnableMetrics(obs.DefaultRegistry())
	}
	g, err := gebe.LoadGraph(*in)
	if err != nil {
		fail(err)
	}
	var om pmf.PMF
	switch *pmfName {
	case "poisson":
		om = pmf.NewPoisson(*lambda)
	case "geometric":
		om = pmf.NewGeometric(*alpha)
	case "uniform":
		om = pmf.NewUniform(*tau)
	default:
		fail(fmt.Errorf("unknown pmf %q", *pmfName))
	}

	var deadline time.Time
	if *ddl > 0 {
		deadline = time.Now().Add(*ddl)
	}

	uIdx := indexOf(g.ULabels)
	vIdx := indexOf(g.VLabels)
	lookup := func(idx map[string]int, name, side string) int {
		i, ok := idx[name]
		if !ok {
			fail(fmt.Errorf("%s node %q not in graph", side, name))
		}
		return i
	}

	ran := false
	if *mhs != "" {
		a, b := splitPair(*mhs)
		s, err := core.MHSQuery(g, om, *tau, lookup(uIdx, a, "U"), lookup(uIdx, b, "U"), deadline)
		if err != nil {
			fail(err)
		}
		fmt.Printf("MHS(%s, %s) = %.6f\n", a, b, s)
		ran = true
	}
	if *mhsv != "" {
		a, b := splitPair(*mhsv)
		s, err := core.MHSQueryV(g, om, *tau, lookup(vIdx, a, "V"), lookup(vIdx, b, "V"), deadline)
		if err != nil {
			fail(err)
		}
		fmt.Printf("MHS_V(%s, %s) = %.6f\n", a, b, s)
		ran = true
	}
	if *mhp != "" {
		a, b := splitPair(*mhp)
		p, err := core.MHPQuery(g, om, *tau, lookup(uIdx, a, "U"), lookup(vIdx, b, "V"), deadline)
		if err != nil {
			fail(err)
		}
		fmt.Printf("MHP(%s, %s) = %.6f\n", a, b, p)
		ran = true
	}
	if *similar != "" {
		i := lookup(uIdx, *similar, "U")
		ids, sims, err := core.TopSimilar(g, om, *tau, i, *top, deadline)
		if err != nil {
			fail(err)
		}
		fmt.Printf("top-%d most similar to %s:\n", *top, *similar)
		for x, id := range ids {
			fmt.Printf("  %-20s %.6f\n", g.ULabels[id], sims[x])
		}
		ran = true
	}
	if !ran {
		fmt.Fprintln(os.Stderr, "gebe-sim: provide one of -mhs, -mhsv, -mhp, -similar")
		os.Exit(2)
	}
}

func indexOf(labels []string) map[string]int {
	m := make(map[string]int, len(labels))
	for i, l := range labels {
		m[l] = i
	}
	return m
}

func splitPair(s string) (string, string) {
	parts := strings.SplitN(s, ",", 2)
	if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
		fail(fmt.Errorf("pair %q must be 'a,b'", s))
	}
	return strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1])
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "gebe-sim:", err)
	os.Exit(1)
}
