// Command gebe-datagen synthesizes the stand-in datasets (or custom
// graphs) as edge-list files.
//
// Usage:
//
//	gebe-datagen -dataset movielens -out movielens.tsv          # one stand-in
//	gebe-datagen -all -dir data/                                # all ten
//	gebe-datagen -er -nu 5000 -nv 5000 -ne 100000 -out er.tsv   # ER graph
//	gebe-datagen -dataset dblp -split 0.6 -out dblp.tsv         # + .train/.test
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"gebe/internal/bigraph"
	"gebe/internal/budget"
	"gebe/internal/gen"
	"gebe/internal/obs"
)

func main() {
	var (
		dataset = flag.String("dataset", "", "stand-in name (see -list)")
		list    = flag.Bool("list", false, "list available stand-ins")
		all     = flag.Bool("all", false, "generate all ten stand-ins into -dir")
		dir     = flag.String("dir", ".", "output directory for -all")
		out     = flag.String("out", "", "output edge list path")
		er      = flag.Bool("er", false, "generate a bipartite Erdős–Rényi graph")
		nu      = flag.Int("nu", 1000, "ER: |U|")
		nv      = flag.Int("nv", 1000, "ER: |V|")
		ne      = flag.Int("ne", 10000, "ER: |E|")
		wflag   = flag.Bool("weighted", false, "ER: weighted edges")
		split   = flag.Float64("split", 0, "also write <out>.train/<out>.test with this train fraction")
		seed    = flag.Uint64("seed", 1, "random seed")
		ddl     = flag.Duration("deadline", 0, "cooperative wall-clock budget for generation (0 = unlimited)")
	)
	cli := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()
	stop, err := cli.Start("gebe-datagen")
	if err != nil {
		fail(err)
	}
	defer stop()
	var deadline time.Time
	if *ddl > 0 {
		deadline = time.Now().Add(*ddl)
	}

	switch {
	case *list:
		fmt.Println("name        |U|     |V|     |E|      type       (paper size)")
		for _, d := range gen.Datasets() {
			kind := "unweighted"
			if d.Weighted {
				kind = "weighted"
			}
			fmt.Printf("%-11s %-7d %-7d %-8d %-10s (%d x %d, %d edges)\n",
				d.Name, d.NU, d.NV, d.NE, kind, d.PaperNU, d.PaperNV, d.PaperNE)
		}
	case *all:
		for _, d := range gen.Datasets() {
			if err := budget.Check(deadline); err != nil {
				fail(fmt.Errorf("before %s: %w", d.Name, err))
			}
			g, err := d.Build(*seed)
			if err != nil {
				fail(err)
			}
			path := filepath.Join(*dir, d.Name+".tsv")
			if err := g.SaveEdgeList(path); err != nil {
				fail(err)
			}
			fmt.Printf("wrote %s: %v\n", path, g.Stats())
		}
	case *er:
		requireOut(*out)
		g, err := gen.ER(*nu, *nv, *ne, *wflag, *seed)
		if err != nil {
			fail(err)
		}
		write(g, *out, *split, *seed)
	case *dataset != "":
		requireOut(*out)
		d, err := gen.ByName(*dataset)
		if err != nil {
			fail(err)
		}
		g, err := d.Build(*seed)
		if err != nil {
			fail(err)
		}
		write(g, *out, *split, *seed)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func write(g *bigraph.Graph, out string, split float64, seed uint64) {
	if err := g.SaveEdgeList(out); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s: %v\n", out, g.Stats())
	if split > 0 {
		train, test := g.Split(split, seed)
		testGraph := &bigraph.Graph{NU: g.NU, NV: g.NV, Edges: test,
			ULabels: g.ULabels, VLabels: g.VLabels, Weighted: g.Weighted}
		if err := train.SaveEdgeList(out + ".train"); err != nil {
			fail(err)
		}
		if err := testGraph.SaveEdgeList(out + ".test"); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s.train (%d edges) and %s.test (%d edges)\n",
			out, train.NumEdges(), out, len(test))
	}
}

func requireOut(out string) {
	if out == "" {
		fmt.Fprintln(os.Stderr, "gebe-datagen: -out is required")
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "gebe-datagen:", err)
	os.Exit(1)
}
