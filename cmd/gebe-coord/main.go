// Command gebe-coord is the scatter/gather front door for an
// item-sharded serving fleet: it exposes the same /v1 API as a single
// gebe-serve process, fans each query out to every healthy shard under
// the request's remaining deadline, and merges the per-shard top-N
// lists — with every shard up, responses are byte-identical to an
// unsharded server over the same embedding.
//
// Usage:
//
//	gebe-shard -emb emb.tsv -shards 2 -out emb-shard
//	gebe-serve -emb emb-shard.0.tsv -train train.tsv -addr :8091 &
//	gebe-serve -emb emb-shard.1.tsv -train train.tsv -addr :8092 &
//	gebe-coord -shards http://127.0.0.1:8091,http://127.0.0.1:8092 -addr :8080
//
// A down shard degrades, never fails: affected answers come back 200
// with "truncated":true and an X-Gebe-Truncated header; only a fully
// dead fleet yields 503. Shards are health-probed every -probe-interval,
// ejected after -fail-after consecutive failures, and readmitted by the
// next successful probe. Slow shard calls are hedged after -hedge-after
// (the losing request is cancelled); transport errors are retried once.
// POST /v1/reload (gated by -admin-token) fans the reload out to every
// shard and reconciles version skew; healthz fails while healthy shards
// disagree on the model version.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gebe/internal/obs"
	"gebe/internal/serve"
	"gebe/internal/shard"
)

func main() {
	var (
		shardsP       = flag.String("shards", "", "comma-separated shard base URLs (required)")
		addr          = flag.String("addr", ":8080", "listen address for the coordinator API")
		ddl           = flag.Duration("deadline", 0, "per-request end-to-end budget propagated to shards (0 = unlimited)")
		hedgeAfter    = flag.Duration("hedge-after", 0, "hedge a shard call still unanswered after this long (0 = off)")
		probeInterval = flag.Duration("probe-interval", time.Second, "background shard health-probe period")
		probeTimeout  = flag.Duration("probe-timeout", 500*time.Millisecond, "per-probe round-trip budget")
		failAfter     = flag.Int("fail-after", 2, "consecutive failures before a shard is ejected")
		defaultN      = flag.Int("n", 10, "default recommendation list length (must match the shards)")
		drain         = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
		traceReqs     = flag.Int("trace-requests", 64, "retained request traces on /debug/requests (0 = disabled)")
		latencyOut    = flag.String("latency-out", "", "write a latency snapshot (COORD_LATENCY.json) here on clean exit")
		adminToken    = flag.String("admin-token", "", "X-Admin-Token required by POST /v1/reload (empty = open)")
	)
	cli := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if *shardsP == "" {
		fmt.Fprintln(os.Stderr, "gebe-coord: -shards is required")
		flag.Usage()
		os.Exit(2)
	}
	var urls []string
	for _, u := range strings.Split(*shardsP, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}
	stop, err := cli.Start("gebe-coord")
	if err != nil {
		fail(err)
	}
	defer stop()
	if cli.Active() {
		obs.RegisterRuntimeMetrics(obs.DefaultRegistry())
	}

	coord, err := shard.New(shard.Config{
		Shards:        urls,
		Deadline:      *ddl,
		HedgeAfter:    *hedgeAfter,
		ProbeInterval: *probeInterval,
		ProbeTimeout:  *probeTimeout,
		FailAfter:     *failAfter,
		DefaultN:      *defaultN,
		TraceRequests: *traceReqs,
		AdminToken:    *adminToken,
		Metrics:       obs.DefaultRegistry(),
		Log:           obs.Default(),
	})
	if err != nil {
		fail(err)
	}
	coord.Start()
	defer coord.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "gebe-coord: fronting %d shards on http://%s (deadline=%s hedge-after=%s probe=%s fail-after=%d)\n",
		len(urls), ln.Addr(), *ddl, *hedgeAfter, *probeInterval, *failAfter)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	if err := serve.Run(ln, coord.Handler(), sig, *drain, obs.Default()); err != nil {
		fail(err)
	}
	if *latencyOut != "" {
		if err := coord.WriteLatencySnapshot(*latencyOut); err != nil {
			fail(err)
		}
		obs.Default().Info("coord: wrote latency snapshot", "path", *latencyOut)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "gebe-coord:", err)
	os.Exit(1)
}
