// Command gebe-serve exposes a trained embedding as an HTTP service:
// top-N recommendation, same-side similarity and pair scoring over the
// factorized U·Vᵀ scores — the online form of the offline evaluation
// protocols, sharing their tiled GEMM scorer.
//
// Usage:
//
//	gebe-serve -emb emb.tsv -addr :8080
//	gebe-serve -emb emb.tsv -train train.tsv -max-inflight 64 -deadline 250ms -cache 4096
//
// Endpoints (JSON): POST /v1/recommend, GET /v1/similar, POST /v1/score,
// GET /v1/healthz, GET /v1/info, POST /v1/reload. Requests beyond
// -max-inflight are shed with 429 + Retry-After; requests that blow
// -deadline get 503; SIGINT/SIGTERM drains in-flight requests before
// exiting. POST /v1/reload (gated by -admin-token) and SIGHUP both
// re-read -emb/-train and hot-swap the served model without dropping
// in-flight requests. Metrics (request
// histograms, shed/cache counters, runtime stats) appear on the
// -debug-addr mux. Every non-bypass request answers with an
// X-Request-ID; the -trace-requests slowest/errored span trees are
// retrievable from GET /debug/requests[/{id}], and -latency-out
// persists per-endpoint latency quantiles on clean shutdown for the
// gebe-regress gate.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gebe"
	"gebe/internal/ann"
	"gebe/internal/dense"
	"gebe/internal/eval"
	"gebe/internal/obs"
	"gebe/internal/serve"
	"gebe/internal/sparse"
)

func main() {
	var (
		embP        = flag.String("emb", "", "embedding file from cmd/gebe (required)")
		trainP      = flag.String("train", "", "training edge list enabling mask_train exclusion")
		addr        = flag.String("addr", ":8080", "listen address for the serving API")
		ddl         = flag.Duration("deadline", 0, "per-request compute budget (0 = unlimited)")
		maxInflight = flag.Int("max-inflight", 64, "max concurrent requests before shedding with 429 (0 = unlimited)")
		cacheSize   = flag.Int("cache", 1024, "recommend LRU cache entries (0 = disabled)")
		defaultN    = flag.Int("n", 10, "default recommendation list length")
		drain       = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
		traceReqs   = flag.Int("trace-requests", 64, "retained request traces on /debug/requests (0 = disabled)")
		latencyOut  = flag.String("latency-out", "", "write a latency snapshot (SERVE_LATENCY.json) here on clean exit")
		adminToken  = flag.String("admin-token", "", "X-Admin-Token required by POST /v1/reload (empty = open)")
		annClusters = flag.Int("ann-clusters", 0, "IVF clusters for approximate retrieval (0 = approx mode disabled)")
		annNprobe   = flag.Int("ann-nprobe", 0, "default clusters probed per approx request (0 = clusters/8)")
		annInt8     = flag.Bool("ann-int8", false, "serve approx requests from 8-bit quantized item rows")
	)
	cli := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if *embP == "" {
		fmt.Fprintln(os.Stderr, "gebe-serve: -emb is required")
		flag.Usage()
		os.Exit(2)
	}
	stop, err := cli.Start("gebe-serve")
	if err != nil {
		fail(err)
	}
	defer stop()
	// The serving hot path is the eval scorer's GEMM tiles; surface its
	// metrics (and the engines') whenever any sink is on.
	if cli.Active() {
		eval.EnableMetrics(obs.DefaultRegistry())
		ann.EnableMetrics(obs.DefaultRegistry())
		sparse.EnableMetrics(obs.DefaultRegistry())
		dense.EnableMetrics(obs.DefaultRegistry())
		obs.RegisterRuntimeMetrics(obs.DefaultRegistry())
	}

	emb, err := gebe.LoadEmbedding(*embP)
	if err != nil {
		fail(err)
	}
	var train *gebe.Graph
	if *trainP != "" {
		if train, err = gebe.LoadGraph(*trainP); err != nil {
			fail(err)
		}
	}
	// The reload loader re-reads the same paths the process started from:
	// retrain offline, overwrite -emb (and -train), then POST /v1/reload
	// or send SIGHUP to hot-swap without restarting.
	reload := func() (*gebe.Embedding, *gebe.Graph, error) {
		e, err := gebe.LoadEmbedding(*embP)
		if err != nil {
			return nil, nil, err
		}
		var tg *gebe.Graph
		if *trainP != "" {
			if tg, err = gebe.LoadGraph(*trainP); err != nil {
				return nil, nil, err
			}
		}
		return e, tg, nil
	}
	// The IVF index is rebuilt on every reload inside the new model
	// snapshot, so approx answers always come from the served embedding.
	var annCfg *ann.Config
	if *annClusters > 0 {
		annCfg = &ann.Config{Clusters: *annClusters, Nprobe: *annNprobe, Int8: *annInt8}
	} else if *annNprobe > 0 || *annInt8 {
		fail(fmt.Errorf("-ann-nprobe/-ann-int8 require -ann-clusters > 0"))
	}
	srv, err := serve.New(emb, train, serve.Config{
		Deadline:      *ddl,
		MaxInflight:   *maxInflight,
		CacheSize:     *cacheSize,
		DefaultN:      *defaultN,
		TraceRequests: *traceReqs,
		Metrics:       obs.DefaultRegistry(),
		Log:           obs.Default(),
		Reload:        reload,
		AdminToken:    *adminToken,
		ANN:           annCfg,
	})
	if err != nil {
		fail(err)
	}

	// SIGHUP is the operational reload path for process managers that
	// can't speak HTTP (systemd's ExecReload, logrotate-style hooks).
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if v, err := srv.Reload(); err != nil {
				obs.Default().Warn("serve: SIGHUP reload failed", "err", err)
			} else {
				obs.Default().Info("serve: SIGHUP reload complete", "model_version", v)
			}
		}
	}()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	annDesc := "off"
	if annCfg != nil {
		annDesc = fmt.Sprintf("%d clusters", *annClusters)
	}
	fmt.Fprintf(os.Stderr, "gebe-serve: %s embedding %dx%dx%d on http://%s (max-inflight=%d deadline=%s cache=%d ann=%s)\n",
		emb.Method, emb.U.Rows, emb.V.Rows, emb.K(), ln.Addr(), *maxInflight, *ddl, *cacheSize, annDesc)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	if err := serve.Run(ln, srv.Handler(), sig, *drain, obs.Default()); err != nil {
		fail(err)
	}
	// The snapshot is written after the drain so it covers every request
	// this process served; gebe-regress compares it against the committed
	// baseline.
	if *latencyOut != "" {
		if err := srv.WriteLatencySnapshot(*latencyOut); err != nil {
			fail(err)
		}
		obs.Default().Info("serve: wrote latency snapshot", "path", *latencyOut)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "gebe-serve:", err)
	os.Exit(1)
}
