package gebe

import (
	"math"
	"strings"
	"testing"
)

func smallGraph(t testing.TB) *Graph {
	t.Helper()
	var edges []Edge
	for u := 0; u < 12; u++ {
		for d := 0; d < 4; d++ {
			edges = append(edges, Edge{U: u, V: (u*3 + d) % 10, W: float64(1 + d)})
		}
	}
	g, err := NewGraph(12, 10, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestEmbedDefaultIsGEBEP(t *testing.T) {
	g := smallGraph(t)
	e, err := Embed(g, Options{K: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if e.Method != "gebep" {
		t.Errorf("Embed method = %q", e.Method)
	}
	if e.U.Rows != 12 || e.V.Rows != 10 || e.K() != 4 {
		t.Errorf("shape wrong: %dx%d / %dx%d", e.U.Rows, e.K(), e.V.Rows, e.V.Cols)
	}
}

func TestAllEntryPoints(t *testing.T) {
	g := smallGraph(t)
	type entry struct {
		name string
		fn   func(*Graph, Options) (*Embedding, error)
	}
	for _, ep := range []entry{
		{"GEBE", GEBE}, {"GEBEP", GEBEP}, {"MHPBNE", MHPBNE}, {"MHSBNE", MHSBNE},
	} {
		e, err := ep.fn(g, Options{K: 3, Seed: 2})
		if err != nil {
			t.Fatalf("%s: %v", ep.name, err)
		}
		if e.U.Rows != g.NU || e.V.Rows != g.NV {
			t.Errorf("%s: wrong shapes", ep.name)
		}
	}
}

func TestPMFConstructors(t *testing.T) {
	if Uniform(5).Name() != "uniform" || Geometric(0.3).Name() != "geometric" || Poisson(2).Name() != "poisson" {
		t.Error("PMF constructor names wrong")
	}
	g := smallGraph(t)
	for _, p := range []PMF{Uniform(5), Geometric(0.3), Poisson(2)} {
		if _, err := GEBE(g, Options{K: 3, PMF: p, Seed: 3}); err != nil {
			t.Errorf("GEBE with %s: %v", p.Name(), err)
		}
	}
}

func TestReadGraph(t *testing.T) {
	g, err := ReadGraph(strings.NewReader("a x 2\nb x\nb y 3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NU != 2 || g.NV != 2 || g.NumEdges() != 3 {
		t.Errorf("parsed %v", g.Stats())
	}
}

func TestEmbeddingRoundTrip(t *testing.T) {
	g := smallGraph(t)
	e, err := Embed(g, Options{K: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteEmbedding(&sb, e); err != nil {
		t.Fatal(err)
	}
	e2, err := ReadEmbedding(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if e2.Method != e.Method || e2.K() != e.K() || e2.U.Rows != e.U.Rows || e2.V.Rows != e.V.Rows {
		t.Fatal("round trip changed metadata")
	}
	for i := range e.U.Data {
		if math.Abs(e.U.Data[i]-e2.U.Data[i]) > 1e-9*(1+math.Abs(e.U.Data[i])) {
			t.Fatalf("U[%d] %v != %v", i, e.U.Data[i], e2.U.Data[i])
		}
	}
	for i := range e.V.Data {
		if math.Abs(e.V.Data[i]-e2.V.Data[i]) > 1e-9*(1+math.Abs(e.V.Data[i])) {
			t.Fatalf("V[%d] %v != %v", i, e.V.Data[i], e2.V.Data[i])
		}
	}
}

func TestSaveLoadEmbedding(t *testing.T) {
	g := smallGraph(t)
	e, err := Embed(g, Options{K: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/emb.tsv"
	if err := SaveEmbedding(path, e); err != nil {
		t.Fatal(err)
	}
	e2, err := LoadEmbedding(path)
	if err != nil {
		t.Fatal(err)
	}
	if e2.Score(0, 0) != e2.Score(0, 0) { // NaN guard
		t.Fatal("NaN after load")
	}
	if math.Abs(e.Score(1, 2)-e2.Score(1, 2)) > 1e-9 {
		t.Error("scores changed across save/load")
	}
}

func TestReadEmbeddingErrors(t *testing.T) {
	cases := []string{
		"",                           // empty
		"#nope 1 1 1 1\n",            // bad magic
		"#gebe m 1 1\n",              // short header
		"#gebe m 1 1 0\n",            // zero k
		"#gebe m 1 1 2\nu 0 1\n",     // short row
		"#gebe m 1 1 2\nw 0 1 2\n",   // bad side
		"#gebe m 1 1 2\nu 5 1 2\n",   // index out of range
		"#gebe m 1 1 2\nu 0 1 zap\n", // bad float
		"#gebe m 1 1 2\n#meta\n",      // meta without key/value
		"#gebe m 1 1 2\n#meta sweeps zap\n",      // bad meta int
		"#gebe m 1 1 2\n#meta values 1 zap\n",    // bad meta float
		"#gebe m 1 1 2\n#meta converged maybe\n", // bad meta bool
	}
	for _, in := range cases {
		if _, err := ReadEmbedding(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestEmbeddingMetaRoundTrip(t *testing.T) {
	g := smallGraph(t)
	e, err := GEBE(g, Options{K: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// Force every diagnostic field to a distinctive value so the round
	// trip covers the whole #meta vocabulary.
	e.SigmaScale = 1.25
	e.Sweeps = 42
	e.SweepsSaved = 158
	e.Converged = true
	e.StopReason = "stagnated"
	e.WarmStarted = true
	e.Values = []float64{0.123456789012345678, 3.0000000001e-7, 0}

	var sb strings.Builder
	if err := WriteEmbedding(&sb, e); err != nil {
		t.Fatal(err)
	}
	e2, err := ReadEmbedding(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if e2.SigmaScale != e.SigmaScale || e2.Sweeps != e.Sweeps || e2.SweepsSaved != e.SweepsSaved ||
		e2.Converged != e.Converged || e2.StopReason != e.StopReason || e2.WarmStarted != e.WarmStarted {
		t.Errorf("meta changed: %+v", e2)
	}
	if len(e2.Values) != len(e.Values) {
		t.Fatalf("values count %d, want %d", len(e2.Values), len(e.Values))
	}
	for i := range e.Values {
		// %.17g is lossless for float64, so equality must be exact.
		if e2.Values[i] != e.Values[i] {
			t.Errorf("values[%d] %v != %v", i, e2.Values[i], e.Values[i])
		}
	}

	// Unknown #meta keys and bare comment lines must be skipped, not fatal.
	tolerant := "#gebe m 1 1 2\n#meta frobnicate 7\n# future extension\nu 0 1 2\nv 0 3 4\n"
	if _, err := ReadEmbedding(strings.NewReader(tolerant)); err != nil {
		t.Errorf("unknown meta key rejected: %v", err)
	}
}
