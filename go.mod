module gebe

go 1.22
