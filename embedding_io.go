package gebe

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"gebe/internal/core"
	"gebe/internal/dense"
)

// WriteEmbedding serializes an embedding as TSV: a header line
// "#gebe <method> <|U|> <|V|> <k>", optional "#meta <key> <values...>"
// lines carrying the solver diagnostics (eigenvalues, σ₁ scale, sweep
// counts, convergence, stop reason), then one line per node —
// "u <idx> <k floats>" for the U side followed by "v <idx> <k floats>".
func WriteEmbedding(w io.Writer, e *Embedding) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "#gebe %s %d %d %d\n", e.Method, e.U.Rows, e.V.Rows, e.K()); err != nil {
		return fmt.Errorf("gebe: writing embedding: %w", err)
	}
	if err := writeMeta(bw, e); err != nil {
		return fmt.Errorf("gebe: writing embedding: %w", err)
	}
	write := func(side string, m *dense.Matrix) error {
		for i := 0; i < m.Rows; i++ {
			if _, err := fmt.Fprintf(bw, "%s\t%d", side, i); err != nil {
				return err
			}
			for _, x := range m.Row(i) {
				if _, err := fmt.Fprintf(bw, "\t%.10g", x); err != nil {
					return err
				}
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
		}
		return nil
	}
	if err := write("u", e.U); err != nil {
		return fmt.Errorf("gebe: writing embedding: %w", err)
	}
	if err := write("v", e.V); err != nil {
		return fmt.Errorf("gebe: writing embedding: %w", err)
	}
	return bw.Flush()
}

// writeMeta emits the optional "#meta" diagnostic lines. Zero-valued
// fields are omitted so embeddings from external tools stay minimal.
func writeMeta(bw *bufio.Writer, e *Embedding) error {
	if e.SigmaScale != 0 {
		if _, err := fmt.Fprintf(bw, "#meta sigma_scale %.17g\n", e.SigmaScale); err != nil {
			return err
		}
	}
	if e.Sweeps != 0 {
		if _, err := fmt.Fprintf(bw, "#meta sweeps %d\n", e.Sweeps); err != nil {
			return err
		}
	}
	if e.SweepsSaved != 0 {
		if _, err := fmt.Fprintf(bw, "#meta sweeps_saved %d\n", e.SweepsSaved); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(bw, "#meta converged %t\n", e.Converged); err != nil {
		return err
	}
	if e.WarmStarted {
		if _, err := fmt.Fprintf(bw, "#meta warm_start true\n"); err != nil {
			return err
		}
	}
	if e.StopReason != "" {
		if _, err := fmt.Fprintf(bw, "#meta stop_reason %s\n", e.StopReason); err != nil {
			return err
		}
	}
	if e.Sharded() {
		if _, err := fmt.Fprintf(bw, "#meta shard %d %d %d %d\n",
			e.ShardIndex, e.ShardCount, e.ShardOffset, e.ShardTotal); err != nil {
			return err
		}
	}
	if len(e.Values) > 0 {
		if _, err := fmt.Fprintf(bw, "#meta values"); err != nil {
			return err
		}
		for _, v := range e.Values {
			if _, err := fmt.Fprintf(bw, " %.17g", v); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return nil
}

// parseMeta applies one "#meta" line to e. Unknown keys are ignored so
// newer writers stay readable by older readers and vice versa.
func parseMeta(e *core.Embedding, fields []string, line int) error {
	if len(fields) < 3 {
		return fmt.Errorf("gebe: line %d: #meta needs a key and a value", line)
	}
	key, vals := fields[1], fields[2:]
	bad := func(v string) error {
		return fmt.Errorf("gebe: line %d: bad #meta %s value %q", line, key, v)
	}
	switch key {
	case "sigma_scale":
		x, err := strconv.ParseFloat(vals[0], 64)
		if err != nil || !isFinite(x) {
			return bad(vals[0])
		}
		e.SigmaScale = x
	case "sweeps":
		n, err := strconv.Atoi(vals[0])
		if err != nil {
			return bad(vals[0])
		}
		e.Sweeps = n
	case "sweeps_saved":
		n, err := strconv.Atoi(vals[0])
		if err != nil {
			return bad(vals[0])
		}
		e.SweepsSaved = n
	case "converged":
		b, err := strconv.ParseBool(vals[0])
		if err != nil {
			return bad(vals[0])
		}
		e.Converged = b
	case "warm_start":
		b, err := strconv.ParseBool(vals[0])
		if err != nil {
			return bad(vals[0])
		}
		e.WarmStarted = b
	case "stop_reason":
		e.StopReason = vals[0]
	case "shard":
		// "#meta shard <index> <count> <offset> <total>": the item-side
		// shard identity cmd/gebe-shard stamps into split embeddings.
		if len(vals) != 4 {
			return fmt.Errorf("gebe: line %d: #meta shard needs 4 values, got %d", line, len(vals))
		}
		ns := make([]int, 4)
		for i, v := range vals {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return bad(v)
			}
			ns[i] = n
		}
		idx, count, offset, total := ns[0], ns[1], ns[2], ns[3]
		if count == 0 || idx >= count || offset > total {
			return fmt.Errorf("gebe: line %d: inconsistent #meta shard %d %d %d %d", line, idx, count, offset, total)
		}
		e.ShardIndex, e.ShardCount, e.ShardOffset, e.ShardTotal = idx, count, offset, total
	case "values":
		e.Values = make([]float64, len(vals))
		for i, v := range vals {
			x, err := strconv.ParseFloat(v, 64)
			if err != nil || !isFinite(x) {
				return bad(v)
			}
			e.Values[i] = x
		}
	}
	return nil
}

// SaveEmbedding writes an embedding to a file.
func SaveEmbedding(path string, e *Embedding) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("gebe: %w", err)
	}
	if err := WriteEmbedding(f, e); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadEmbedding parses the format written by WriteEmbedding. The parser
// is strict — this is the load path of the serving layer, where a
// malformed file must fail at startup, not at query time:
// non-finite vector entries, duplicate (side, index) rows, and
// truncated streams (fewer rows than the header promises) are all
// errors, as are header dimensions too large to allocate.
func ReadEmbedding(r io.Reader) (*Embedding, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("gebe: empty embedding stream")
	}
	header := strings.Fields(sc.Text())
	if len(header) != 5 || header[0] != "#gebe" {
		return nil, fmt.Errorf("gebe: bad embedding header %q", sc.Text())
	}
	nu, err1 := strconv.Atoi(header[2])
	nv, err2 := strconv.Atoi(header[3])
	k, err3 := strconv.Atoi(header[4])
	if err1 != nil || err2 != nil || err3 != nil || nu < 0 || nv < 0 || k <= 0 {
		return nil, fmt.Errorf("gebe: bad embedding dimensions in header %q", sc.Text())
	}
	// An adversarial header must not overflow rows×cols into a negative
	// (or tiny) allocation; reject what cannot be indexed.
	if nu > math.MaxInt/k || nv > math.MaxInt/k {
		return nil, fmt.Errorf("gebe: embedding dimensions %dx%d, %dx%d overflow", nu, k, nv, k)
	}
	e := &core.Embedding{
		U:      dense.New(nu, k),
		V:      dense.New(nv, k),
		Method: header[1],
	}
	seen := map[string]*rowSet{"u": newRowSet(nu), "v": newRowSet(nv)}
	line := 1
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if fields[0] == "#meta" {
			if err := parseMeta(e, fields, line); err != nil {
				return nil, err
			}
			continue
		}
		if strings.HasPrefix(fields[0], "#") {
			continue // future header extensions
		}
		if len(fields) != k+2 {
			return nil, fmt.Errorf("gebe: line %d: want %d fields, got %d", line, k+2, len(fields))
		}
		idx, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("gebe: line %d: bad index %q", line, fields[1])
		}
		var m *dense.Matrix
		switch fields[0] {
		case "u":
			m = e.U
		case "v":
			m = e.V
		default:
			return nil, fmt.Errorf("gebe: line %d: bad side %q", line, fields[0])
		}
		if idx < 0 || idx >= m.Rows {
			return nil, fmt.Errorf("gebe: line %d: index %d outside %d rows", line, idx, m.Rows)
		}
		if !seen[fields[0]].mark(idx) {
			return nil, fmt.Errorf("gebe: line %d: duplicate %s row %d", line, fields[0], idx)
		}
		row := m.Row(idx)
		for j := 0; j < k; j++ {
			x, err := strconv.ParseFloat(fields[j+2], 64)
			if err != nil {
				return nil, fmt.Errorf("gebe: line %d: bad value %q", line, fields[j+2])
			}
			if !isFinite(x) {
				return nil, fmt.Errorf("gebe: line %d: non-finite value %q", line, fields[j+2])
			}
			row[j] = x
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("gebe: reading embedding: %w", err)
	}
	if got := seen["u"].count; got != nu {
		return nil, fmt.Errorf("gebe: truncated embedding: %d of %d u rows", got, nu)
	}
	if got := seen["v"].count; got != nv {
		return nil, fmt.Errorf("gebe: truncated embedding: %d of %d v rows", got, nv)
	}
	// A shard's slice must fit inside the full item side it claims to be
	// cut from; a violation means the file was truncated or hand-edited.
	if e.Sharded() && e.ShardOffset+nv > e.ShardTotal {
		return nil, fmt.Errorf("gebe: shard %d/%d covers rows [%d,%d) of only %d items",
			e.ShardIndex, e.ShardCount, e.ShardOffset, e.ShardOffset+nv, e.ShardTotal)
	}
	return e, nil
}

func isFinite(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0)
}

// rowSet tracks which row indices have been filled — one bit per row,
// so duplicate and truncation detection cost |rows|/8 bytes.
type rowSet struct {
	bits  []uint64
	count int
}

func newRowSet(n int) *rowSet {
	return &rowSet{bits: make([]uint64, (n+63)/64)}
}

// mark records idx and reports whether it was fresh.
func (s *rowSet) mark(idx int) bool {
	w, b := idx/64, uint64(1)<<(idx%64)
	if s.bits[w]&b != 0 {
		return false
	}
	s.bits[w] |= b
	s.count++
	return true
}

// LoadEmbedding reads an embedding from a file.
func LoadEmbedding(path string) (*Embedding, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("gebe: %w", err)
	}
	defer f.Close()
	e, err := ReadEmbedding(f)
	if err != nil {
		return nil, fmt.Errorf("gebe: %s: %w", path, err)
	}
	return e, nil
}
