package gebe_test

import (
	"fmt"

	"gebe"
)

// ExampleEmbed builds a small weighted bipartite graph and embeds it
// with GEBE^p, then scores a user-item pair.
func ExampleEmbed() {
	edges := []gebe.Edge{
		{U: 0, V: 0, W: 5}, {U: 0, V: 1, W: 3},
		{U: 1, V: 0, W: 4}, {U: 1, V: 1, W: 4}, {U: 1, V: 2, W: 1},
		{U: 2, V: 2, W: 5},
	}
	g, err := gebe.NewGraph(3, 3, edges)
	if err != nil {
		panic(err)
	}
	emb, err := gebe.Embed(g, gebe.Options{K: 2, Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println(emb.Method, emb.K())
	// u0 and u1 share movies; u2 does not. The shared-taste association
	// must outrank the disjoint one.
	fmt.Println(emb.Score(0, 0) > emb.Score(0, 2))
	// Output:
	// gebep 2
	// true
}

// ExampleGEBE selects the Geometric (PPR-style) instantiation of
// Algorithm 1 explicitly.
func ExampleGEBE() {
	g, err := gebe.NewGraph(2, 2, []gebe.Edge{
		{U: 0, V: 0, W: 1}, {U: 1, V: 1, W: 1}, {U: 0, V: 1, W: 1},
	})
	if err != nil {
		panic(err)
	}
	emb, err := gebe.GEBE(g, gebe.Options{K: 2, PMF: gebe.Geometric(0.5), Seed: 7})
	if err != nil {
		panic(err)
	}
	fmt.Println(emb.Method)
	// Output:
	// gebe-geometric
}
