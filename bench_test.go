package gebe

// Benchmarks mirroring the paper's evaluation section, one family per
// table/figure. Each benchmark measures the embedding-construction (and,
// for the tables, evaluation) pipeline on reduced inputs so that
// `go test -bench=. -benchmem` finishes in minutes; the full-size runs
// are produced by `go run ./cmd/gebe-bench -exp all` and recorded in
// EXPERIMENTS.md.

import (
	"fmt"
	"testing"
	"time"

	"gebe/internal/baselines"
	"gebe/internal/bigraph"
	"gebe/internal/core"
	"gebe/internal/eval"
	"gebe/internal/gen"
	"gebe/internal/pmf"
)

const benchK = 32

// benchGraph caches stand-in graphs across benchmark iterations.
var benchGraphs = map[string]*bigraph.Graph{}

func benchGraph(b *testing.B, name string) *bigraph.Graph {
	b.Helper()
	if g, ok := benchGraphs[name]; ok {
		return g
	}
	ds, err := gen.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	g, err := ds.Build(1)
	if err != nil {
		b.Fatal(err)
	}
	benchGraphs[name] = g
	return g
}

func gebeOpts(om pmf.PMF) core.Options {
	return core.Options{K: benchK, PMF: om, Tau: 20, Iters: 200, Tol: 1e-5, Seed: 1}
}

// BenchmarkTable4 measures the full top-10 recommendation pipeline
// (embed + rank + score) per method on the DBLP stand-in, reporting the
// F1@10 each method achieves.
func BenchmarkTable4(b *testing.B) {
	g := benchGraph(b, "dblp")
	ds, _ := gen.ByName("dblp")
	core10, _, _ := g.KCore(ds.CoreK)
	train, test := core10.Split(0.6, 2)
	run := func(b *testing.B, embed func() (*core.Embedding, error)) {
		b.Helper()
		var f1 float64
		for i := 0; i < b.N; i++ {
			e, err := embed()
			if err != nil {
				b.Fatal(err)
			}
			f1 = eval.TopN(train, test, e.U, e.V, 10, 1).F1
		}
		b.ReportMetric(f1, "F1@10")
	}
	b.Run("GEBEP", func(b *testing.B) {
		run(b, func() (*core.Embedding, error) {
			return core.GEBEP(train, core.Options{K: benchK, Lambda: 1, Epsilon: 0.1, Seed: 1})
		})
	})
	b.Run("GEBE-Poisson", func(b *testing.B) {
		run(b, func() (*core.Embedding, error) { return core.GEBE(train, gebeOpts(pmf.NewPoisson(1))) })
	})
	b.Run("GEBE-Geometric", func(b *testing.B) {
		run(b, func() (*core.Embedding, error) { return core.GEBE(train, gebeOpts(pmf.NewGeometric(0.5))) })
	})
	b.Run("GEBE-Uniform", func(b *testing.B) {
		run(b, func() (*core.Embedding, error) { return core.GEBE(train, gebeOpts(pmf.NewUniform(20))) })
	})
	b.Run("MHP-BNE", func(b *testing.B) {
		run(b, func() (*core.Embedding, error) { return core.MHPBNE(train, gebeOpts(pmf.NewPoisson(1))) })
	})
	b.Run("MHS-BNE", func(b *testing.B) {
		run(b, func() (*core.Embedding, error) { return core.MHSBNE(train, gebeOpts(pmf.NewPoisson(1))) })
	})
	for _, name := range []string{"NRP", "BPR", "LINE"} {
		m, err := baselines.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			run(b, func() (*core.Embedding, error) {
				u, v, err := m.Train(train, benchK, 1, 1, time.Time{})
				if err != nil {
					return nil, err
				}
				return &core.Embedding{U: u, V: v, Method: name}, nil
			})
		})
	}
}

// BenchmarkTable5 measures the link-prediction pipeline per method on
// the Wikipedia stand-in, reporting AUC-ROC.
func BenchmarkTable5(b *testing.B) {
	full := benchGraph(b, "wikipedia")
	train, test := full.Split(0.6, 3)
	run := func(b *testing.B, embed func() (*core.Embedding, error)) {
		b.Helper()
		var auc float64
		for i := 0; i < b.N; i++ {
			e, err := embed()
			if err != nil {
				b.Fatal(err)
			}
			res, err := eval.LinkPred(full, train, test, e.U, e.V, eval.LinkPredOptions{Seed: 5})
			if err != nil {
				b.Fatal(err)
			}
			auc = res.AUCROC
		}
		b.ReportMetric(auc, "AUC-ROC")
	}
	b.Run("GEBEP", func(b *testing.B) {
		run(b, func() (*core.Embedding, error) {
			return core.GEBEP(train, core.Options{K: benchK, Lambda: 1, Epsilon: 0.1, Seed: 1})
		})
	})
	b.Run("GEBE-Poisson", func(b *testing.B) {
		run(b, func() (*core.Embedding, error) { return core.GEBE(train, gebeOpts(pmf.NewPoisson(1))) })
	})
	for _, name := range []string{"NRP", "LINE"} {
		m, err := baselines.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			run(b, func() (*core.Embedding, error) {
				u, v, err := m.Train(train, benchK, 1, 1, time.Time{})
				if err != nil {
					return nil, err
				}
				return &core.Embedding{U: u, V: v, Method: name}, nil
			})
		})
	}
}

// BenchmarkFig2 measures pure embedding-construction time (the paper's
// Figure 2 quantity) for the two headline methods across three stand-ins
// of increasing size.
func BenchmarkFig2(b *testing.B) {
	for _, name := range []string{"dblp", "wikipedia", "yelp"} {
		g := benchGraph(b, name)
		b.Run("GEBEP/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.GEBEP(g, core.Options{K: benchK, Lambda: 1, Epsilon: 0.1, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("GEBE-Poisson/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.GEBE(g, gebeOpts(pmf.NewPoisson(1))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig3 measures GEBE^p scalability on bipartite Erdős–Rényi
// graphs: 3(a) varies nodes at fixed |E|, 3(b) varies edges at fixed
// nodes (endpoints of the scaled grids; the full grids run via
// `gebe-bench -exp fig3`).
func BenchmarkFig3(b *testing.B) {
	for _, n := range []int{1000, 5000} {
		g, err := gen.ER(n/2, n/2, 50000, false, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("a-nodes-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.GEBEP(g, core.Options{K: benchK, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, e := range []int{100000, 500000} {
		g, err := gen.ER(2500, 2500, e, false, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("b-edges-%d", e), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.GEBEP(g, core.Options{K: benchK, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig4 sweeps GEBE^p's λ and ε and GEBE (Poisson)'s τ on the
// DBLP stand-in, reporting F1@10 at each setting (Figure 4's series).
func BenchmarkFig4(b *testing.B) {
	g := benchGraph(b, "dblp")
	ds, _ := gen.ByName("dblp")
	core10, _, _ := g.KCore(ds.CoreK)
	train, test := core10.Split(0.6, 2)
	f1Of := func(e *core.Embedding) float64 {
		return eval.TopN(train, test, e.U, e.V, 10, 1).F1
	}
	for _, lam := range []float64{1, 3, 5} {
		b.Run(fmt.Sprintf("lambda-%.0f", lam), func(b *testing.B) {
			var f1 float64
			for i := 0; i < b.N; i++ {
				e, err := core.GEBEP(train, core.Options{K: benchK, Lambda: lam, Epsilon: 0.1, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				f1 = f1Of(e)
			}
			b.ReportMetric(f1, "F1@10")
		})
	}
	for _, eps := range []float64{0.1, 0.5, 0.9} {
		b.Run(fmt.Sprintf("epsilon-%.1f", eps), func(b *testing.B) {
			var f1 float64
			for i := 0; i < b.N; i++ {
				e, err := core.GEBEP(train, core.Options{K: benchK, Lambda: 1, Epsilon: eps, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				f1 = f1Of(e)
			}
			b.ReportMetric(f1, "F1@10")
		})
	}
	for _, tau := range []int{1, 5, 20} {
		b.Run(fmt.Sprintf("tau-%d", tau), func(b *testing.B) {
			var f1 float64
			for i := 0; i < b.N; i++ {
				opt := gebeOpts(pmf.NewPoisson(1))
				opt.Tau = tau
				e, err := core.GEBE(train, opt)
				if err != nil {
					b.Fatal(err)
				}
				f1 = f1Of(e)
			}
			b.ReportMetric(f1, "F1@10")
		})
	}
}

// BenchmarkFig5 sweeps the same parameters measured by link-prediction
// AUC-ROC on the Wikipedia stand-in (Figure 5's series).
func BenchmarkFig5(b *testing.B) {
	full := benchGraph(b, "wikipedia")
	train, test := full.Split(0.6, 3)
	aucOf := func(e *core.Embedding) float64 {
		res, err := eval.LinkPred(full, train, test, e.U, e.V, eval.LinkPredOptions{Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
		return res.AUCROC
	}
	for _, lam := range []float64{1, 3, 5} {
		b.Run(fmt.Sprintf("lambda-%.0f", lam), func(b *testing.B) {
			var auc float64
			for i := 0; i < b.N; i++ {
				e, err := core.GEBEP(train, core.Options{K: benchK, Lambda: lam, Epsilon: 0.1, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				auc = aucOf(e)
			}
			b.ReportMetric(auc, "AUC-ROC")
		})
	}
	for _, tau := range []int{1, 5, 20} {
		b.Run(fmt.Sprintf("tau-%d", tau), func(b *testing.B) {
			var auc float64
			for i := 0; i < b.N; i++ {
				opt := gebeOpts(pmf.NewPoisson(1))
				opt.Tau = tau
				e, err := core.GEBE(train, opt)
				if err != nil {
					b.Fatal(err)
				}
				auc = aucOf(e)
			}
			b.ReportMetric(auc, "AUC-ROC")
		})
	}
}
