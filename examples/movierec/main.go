// Movierec: end-to-end top-N recommendation on the synthetic MovieLens
// stand-in, reproducing the paper's §6.3 protocol on one dataset:
// 10-core filter, 60/40 split, GEBE^p embeddings, F1/NDCG/MRR@10.
//
// Run with: go run ./examples/movierec
package main

import (
	"fmt"
	"log"
	"time"

	"gebe"
	"gebe/internal/eval"
	"gebe/internal/gen"
)

func main() {
	ds, err := gen.ByName("movielens")
	if err != nil {
		log.Fatal(err)
	}
	g, err := ds.Build(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated MovieLens stand-in: %v\n", g.Stats())

	// The paper's 10-core setting keeps users/items with >= 10 edges.
	core10, _, _ := g.KCore(ds.CoreK)
	fmt.Printf("after %d-core: %v\n", ds.CoreK, core10.Stats())

	// 60%% of edges train the embedding; 40%% are the ground truth.
	train, test := core10.Split(0.6, 7)

	start := time.Now()
	emb, err := gebe.Embed(train, gebe.Options{K: 32, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GEBE^p embedded %d users x %d movies (k=%d) in %.2fs\n",
		train.NU, train.NV, emb.K(), time.Since(start).Seconds())

	res := eval.TopN(train, test, emb.U, emb.V, 10, 4)
	fmt.Printf("\ntop-10 recommendation over %d users:\n", res.Users)
	fmt.Printf("  F1@10   = %.3f\n  NDCG@10 = %.3f\n  MRR@10  = %.3f\n",
		res.F1, res.NDCG, res.MRR)

	// Show one user's actual recommendations.
	showUser(train, emb, 0)
}

func showUser(train *gebe.Graph, emb *gebe.Embedding, user int) {
	seen := map[int]bool{}
	for _, e := range train.Edges {
		if e.U == user {
			seen[e.V] = true
		}
	}
	type cand struct {
		v int
		s float64
	}
	var top []cand
	for v := 0; v < train.NV; v++ {
		if seen[v] {
			continue
		}
		top = append(top, cand{v, emb.Score(user, v)})
	}
	// Partial sort of the top 5.
	for i := 0; i < 5 && i < len(top); i++ {
		best := i
		for j := i + 1; j < len(top); j++ {
			if top[j].s > top[best].s {
				best = j
			}
		}
		top[i], top[best] = top[best], top[i]
	}
	fmt.Printf("\nuser %d watched %d movies; top-5 new suggestions:\n", user, len(seen))
	for i := 0; i < 5 && i < len(top); i++ {
		fmt.Printf("  movie %-5d score %.3f\n", top[i].v, top[i].s)
	}
}
