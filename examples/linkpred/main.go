// Linkpred: end-to-end link prediction on the synthetic Wikipedia
// stand-in, reproducing the paper's §6.4 protocol on one dataset:
// remove 40% of edges, embed the residual graph, train a logistic
// regression on concat(U[u],V[v]) features, and report AUC-ROC / AUC-PR
// against held-out edges plus sampled non-edges.
//
// Run with: go run ./examples/linkpred
package main

import (
	"fmt"
	"log"
	"time"

	"gebe"
	"gebe/internal/eval"
	"gebe/internal/gen"
)

func main() {
	ds, err := gen.ByName("wikipedia")
	if err != nil {
		log.Fatal(err)
	}
	full, err := ds.Build(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated Wikipedia stand-in: %v\n", full.Stats())

	train, removed := full.Split(0.6, 11)
	fmt.Printf("residual graph keeps %d edges; %d removed edges form the positive test set\n",
		train.NumEdges(), len(removed))

	for _, spec := range []struct {
		name string
		run  func() (*gebe.Embedding, error)
	}{
		{"GEBE^p", func() (*gebe.Embedding, error) {
			return gebe.GEBEP(train, gebe.Options{K: 32, Seed: 3})
		}},
		{"GEBE (Poisson)", func() (*gebe.Embedding, error) {
			return gebe.GEBE(train, gebe.Options{K: 32, PMF: gebe.Poisson(1), Tol: 1e-5, Seed: 3})
		}},
		{"MHP-BNE", func() (*gebe.Embedding, error) {
			return gebe.MHPBNE(train, gebe.Options{K: 32, Tol: 1e-5, Seed: 3})
		}},
	} {
		start := time.Now()
		emb, err := spec.run()
		if err != nil {
			log.Fatal(err)
		}
		res, err := eval.LinkPred(full, train, removed, emb.U, emb.V,
			eval.LinkPredOptions{Seed: 13})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s AUC-ROC=%.3f AUC-PR=%.3f (embed+eval %.1fs)\n",
			spec.name, res.AUCROC, res.AUCPR, time.Since(start).Seconds())
	}
}
