// Compare: an accuracy/efficiency shoot-out between GEBE^p, the three
// GEBE instantiations and the strongest scalable competitor (NRP) on a
// mid-sized synthetic graph — the one-dataset essence of the paper's
// Figure 2 + Table 4 story.
//
// Run with: go run ./examples/compare
package main

import (
	"fmt"
	"log"
	"time"

	"gebe"
	"gebe/internal/baselines/nrp"
	"gebe/internal/dense"
	"gebe/internal/eval"
	"gebe/internal/gen"
)

func main() {
	g, err := gen.LatentFactor(gen.LFConfig{
		NU: 4000, NV: 1500, NE: 80000, Clusters: 20, Skew: 0.7,
		CrossRate: 0.2, Weighted: true, MinDegree: 3, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthetic graph: %v\n\n", g.Stats())
	train, test := g.Split(0.6, 9)

	const k = 32
	type method struct {
		name string
		run  func() (u, v *dense.Matrix, err error)
	}
	wrap := func(f func(*gebe.Graph, gebe.Options) (*gebe.Embedding, error), opt gebe.Options) func() (*dense.Matrix, *dense.Matrix, error) {
		return func() (*dense.Matrix, *dense.Matrix, error) {
			e, err := f(train, opt)
			if err != nil {
				return nil, nil, err
			}
			return e.U, e.V, nil
		}
	}
	methods := []method{
		{"GEBE^p", wrap(gebe.GEBEP, gebe.Options{K: k, Seed: 2})},
		{"GEBE (Poisson)", wrap(gebe.GEBE, gebe.Options{K: k, PMF: gebe.Poisson(1), Tol: 1e-5, Seed: 2})},
		{"GEBE (Geometric)", wrap(gebe.GEBE, gebe.Options{K: k, PMF: gebe.Geometric(0.5), Tol: 1e-5, Seed: 2})},
		{"GEBE (Uniform)", wrap(gebe.GEBE, gebe.Options{K: k, PMF: gebe.Uniform(20), Tol: 1e-5, Seed: 2})},
		{"NRP", func() (*dense.Matrix, *dense.Matrix, error) {
			return nrp.Train(train, nrp.Config{Dim: k, Seed: 2})
		}},
	}

	fmt.Printf("%-17s %8s %8s %8s %9s\n", "method", "F1@10", "NDCG@10", "MRR@10", "time")
	for _, m := range methods {
		start := time.Now()
		u, v, err := m.run()
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		res := eval.TopN(train, test, u, v, 10, 4)
		fmt.Printf("%-17s %8.3f %8.3f %8.3f %8.2fs\n",
			m.name, res.F1, res.NDCG, res.MRR, elapsed.Seconds())
	}
}
