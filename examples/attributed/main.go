// Attributed: the paper's stated future-work extension (§8) — augment
// bipartite network embeddings with node attributes. On a sparse graph
// whose structure barely identifies the latent communities, attribute
// fusion visibly improves user-user similarity; the example also shows
// the exact MHS/MHP point-query API.
//
// Run with: go run ./examples/attributed
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"time"

	"gebe/internal/bigraph"
	"gebe/internal/core"
	"gebe/internal/dense"
	"gebe/internal/pmf"
)

func main() {
	// A sparse two-community graph: each of 30 users has just two edges.
	const nu, nv = 30, 10
	rng := rand.New(rand.NewPCG(7, 11))
	var edges []bigraph.Edge
	for u := 0; u < nu; u++ {
		block := u / (nu / 2)
		for d := 0; d < 2; d++ {
			edges = append(edges, bigraph.Edge{U: u, V: block*(nv/2) + rng.IntN(nv/2), W: 1})
		}
	}
	g, err := bigraph.New(nu, nv, edges)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sparse graph: %v\n", g.Stats())

	// Attributes carry the community signal the structure underdetermines.
	uAttrs := dense.New(nu, 4)
	for u := 0; u < nu; u++ {
		uAttrs.Set(u, u/(nu/2), 3)
		uAttrs.Set(u, 2, rng.NormFloat64())
		uAttrs.Set(u, 3, rng.NormFloat64())
	}

	plain, err := core.GEBEP(g, core.Options{K: 8, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	aug, err := core.AttributedEmbed(g, core.Attributes{UAttrs: uAttrs}, core.AttributedOptions{
		Options: core.Options{K: 8, Seed: 3}, AttrDim: 3, AttrWeight: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncommunity separation (within-block cos − across-block cos):\n")
	fmt.Printf("  structure only : %.3f\n", separation(plain.U, nu/2))
	fmt.Printf("  + attributes   : %.3f\n", separation(aug.U, nu/2))

	// Exact multi-hop measures for a couple of pairs (§2.2–2.3).
	om := pmf.NewPoisson(1)
	sSame, _ := core.MHSQuery(g, om, 20, 0, 1, time.Time{})     // same block
	sCross, _ := core.MHSQuery(g, om, 20, 0, nu-1, time.Time{}) // other block
	p, _ := core.MHPQuery(g, om, 20, 0, 0, time.Time{})
	fmt.Printf("\nexact multi-hop measures:\n")
	fmt.Printf("  MHS(u0,u1)  = %.4f (same community)\n", sSame)
	fmt.Printf("  MHS(u0,u%d) = %.4f (other community)\n", nu-1, sCross)
	fmt.Printf("  MHP(u0,v0)  = %.4g (raw multi-hop path mass; grows with the graph's spectral radius — the embedding solvers scale W by 1/σ₁ first)\n", p)
}

func separation(u *dense.Matrix, blockSize int) float64 {
	cosine := func(a, b []float64) float64 {
		na, nb := dense.Norm2(a), dense.Norm2(b)
		if na == 0 || nb == 0 {
			return 0
		}
		return dense.Dot(a, b) / (na * nb)
	}
	var within, across float64
	var nw, na int
	for i := 0; i < u.Rows; i++ {
		for j := i + 1; j < u.Rows; j++ {
			c := cosine(u.Row(i), u.Row(j))
			if i/blockSize == j/blockSize {
				within += c
				nw++
			} else {
				across += c
				na++
			}
		}
	}
	return within/float64(nw) - across/float64(na)
}
