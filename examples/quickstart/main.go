// Quickstart: build a tiny user-movie bipartite graph, embed it with
// GEBE^p, and query the strongest user-movie associations and the most
// similar users.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"gebe"
)

func main() {
	// A toy user-movie graph: 4 users, 5 movies, weights are ratings.
	// Users 0 and 1 share all their movies; user 3 is a heavy rater.
	users := []string{"ana", "bob", "cat", "dan"}
	movies := []string{"matrix", "inception", "arrival", "up", "coco"}
	edges := []gebe.Edge{
		{U: 0, V: 0, W: 5}, {U: 0, V: 1, W: 4}, {U: 0, V: 2, W: 3},
		{U: 1, V: 0, W: 5}, {U: 1, V: 1, W: 5}, {U: 1, V: 2, W: 4},
		{U: 2, V: 2, W: 2}, {U: 2, V: 3, W: 5}, {U: 2, V: 4, W: 4},
		{U: 3, V: 1, W: 3}, {U: 3, V: 2, W: 4}, {U: 3, V: 3, W: 5}, {U: 3, V: 4, W: 2},
	}
	g, err := gebe.NewGraph(len(users), len(movies), edges)
	if err != nil {
		log.Fatal(err)
	}

	// Embed with GEBE^p (Algorithm 2 of the paper).
	emb, err := gebe.Embed(g, gebe.Options{K: 2, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("embedded %d users and %d movies into %d dimensions (method %s)\n\n",
		g.NU, g.NV, emb.K(), emb.Method)

	// The dot product U[u]·V[v] estimates association strength (Eq. (9)'s
	// first term): use it to rank unwatched movies per user.
	watched := g.HasEdgeSet()
	for u, name := range users {
		best, bestScore := -1, 0.0
		for v := range movies {
			if watched[packEdge(u, v)] {
				continue
			}
			if s := emb.Score(u, v); best < 0 || s > bestScore {
				best, bestScore = v, s
			}
		}
		if best >= 0 {
			fmt.Printf("recommend %-10s -> %s (score %.3f)\n", name, movies[best], bestScore)
		}
	}

	// Normalized embeddings capture multi-hop homogeneous similarity
	// (MHS): ana and bob share every movie, so they should be the most
	// similar user pair.
	fmt.Println("\nuser-user cosine similarities:")
	for i := range users {
		for j := i + 1; j < len(users); j++ {
			fmt.Printf("  %s ~ %s: %.3f\n", users[i], users[j], cosine(emb.U.Row(i), emb.U.Row(j)))
		}
	}
}

func packEdge(u, v int) int64 { return int64(u)<<32 | int64(uint32(v)) }

func cosine(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}
