package gebe

import (
	"strings"
	"testing"
)

// TestReadEmbeddingHardening exercises the strict-parse paths the
// serving layer depends on: a malformed file must fail at load, never
// produce an embedding that scores wrong (NaN/Inf), silently drops
// rows (truncation), or lets a later duplicate overwrite an earlier
// row. Each case names the defect and the fragment of the error that
// must identify it.
func TestReadEmbeddingHardening(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{
			name:    "NaN value",
			in:      "#gebe m 1 1 2\nu 0 NaN 1\nv 0 1 2\n",
			wantErr: "non-finite",
		},
		{
			name:    "positive Inf value",
			in:      "#gebe m 1 1 2\nu 0 +Inf 1\nv 0 1 2\n",
			wantErr: "non-finite",
		},
		{
			name:    "negative Inf value",
			in:      "#gebe m 1 1 2\nu 0 1 2\nv 0 -Inf 2\n",
			wantErr: "non-finite",
		},
		{
			name:    "duplicate u row",
			in:      "#gebe m 2 1 2\nu 0 1 2\nu 0 3 4\nu 1 5 6\nv 0 7 8\n",
			wantErr: "duplicate u row 0",
		},
		{
			name:    "duplicate v row",
			in:      "#gebe m 1 2 2\nu 0 1 2\nv 1 3 4\nv 1 5 6\nv 0 7 8\n",
			wantErr: "duplicate v row 1",
		},
		{
			name:    "truncated u side",
			in:      "#gebe m 3 1 2\nu 0 1 2\nu 1 3 4\nv 0 5 6\n",
			wantErr: "truncated embedding: 2 of 3 u rows",
		},
		{
			name:    "truncated v side (stream cut mid-file)",
			in:      "#gebe m 1 4 2\nu 0 1 2\nv 0 1 2\nv 1 3 4\n",
			wantErr: "truncated embedding: 2 of 4 v rows",
		},
		{
			name:    "rows only from header",
			in:      "#gebe m 1 1 2\n",
			wantErr: "truncated",
		},
		{
			name:    "short row",
			in:      "#gebe m 1 1 2\nu 0 1\nv 0 1 2\n",
			wantErr: "want 4 fields",
		},
		{
			name:    "overlong row",
			in:      "#gebe m 1 1 2\nu 0 1 2 3\nv 0 1 2\n",
			wantErr: "want 4 fields",
		},
		{
			name:    "header dimension overflow",
			in:      "#gebe m 4611686018427387904 1 4\n",
			wantErr: "overflow",
		},
		{
			name:    "non-finite sigma_scale meta",
			in:      "#gebe m 1 1 2\n#meta sigma_scale NaN\nu 0 1 2\nv 0 1 2\n",
			wantErr: "bad #meta sigma_scale",
		},
		{
			name:    "non-finite values meta",
			in:      "#gebe m 1 1 2\n#meta values 1 +Inf\nu 0 1 2\nv 0 1 2\n",
			wantErr: "bad #meta values",
		},
		{
			name:    "shard meta arity",
			in:      "#gebe m 1 1 2\n#meta shard 0 2 0\nu 0 1 2\nv 0 1 2\n",
			wantErr: "#meta shard needs 4 values",
		},
		{
			name:    "shard index outside count",
			in:      "#gebe m 1 1 2\n#meta shard 2 2 0 4\nu 0 1 2\nv 0 1 2\n",
			wantErr: "inconsistent #meta shard",
		},
		{
			name:    "shard slice outside total",
			in:      "#gebe m 1 2 2\n#meta shard 1 2 3 4\nu 0 1 2\nv 0 1 2\nv 1 3 4\n",
			wantErr: "covers rows [3,5) of only 4 items",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadEmbedding(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("input accepted:\n%s", tc.in)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}

	// Rows may arrive in any order and interleaved across sides; a
	// complete, finite file must still load.
	ok := "#gebe m 2 2 2\nv 1 1 2\nu 1 3 4\nv 0 5 6\nu 0 7 8\n"
	e, err := ReadEmbedding(strings.NewReader(ok))
	if err != nil {
		t.Fatalf("interleaved complete embedding rejected: %v", err)
	}
	if e.U.At(1, 0) != 3 || e.V.At(0, 1) != 6 {
		t.Errorf("rows landed wrong: U=%v V=%v", e.U, e.V)
	}
}

// TestShardMetaRoundTrip: a shard identity stamped by the splitter must
// survive write → read, and an unsharded embedding must not grow one.
func TestShardMetaRoundTrip(t *testing.T) {
	in := "#gebe m 2 3 2\nu 0 1 2\nu 1 3 4\nv 0 5 6\nv 1 7 8\nv 2 9 10\n"
	e, err := ReadEmbedding(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if e.Sharded() {
		t.Fatalf("unsharded embedding parsed as shard: %+v", e)
	}
	e.ShardIndex, e.ShardCount, e.ShardOffset, e.ShardTotal = 1, 3, 4, 9
	var sb strings.Builder
	if err := WriteEmbedding(&sb, e); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "#meta shard 1 3 4 9\n") {
		t.Fatalf("shard meta line missing:\n%s", sb.String())
	}
	back, err := ReadEmbedding(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.ShardIndex != 1 || back.ShardCount != 3 || back.ShardOffset != 4 || back.ShardTotal != 9 {
		t.Fatalf("shard meta did not round-trip: %+v", back)
	}
}
