package gebe

import (
	"strings"
	"testing"
)

// TestReadEmbeddingHardening exercises the strict-parse paths the
// serving layer depends on: a malformed file must fail at load, never
// produce an embedding that scores wrong (NaN/Inf), silently drops
// rows (truncation), or lets a later duplicate overwrite an earlier
// row. Each case names the defect and the fragment of the error that
// must identify it.
func TestReadEmbeddingHardening(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{
			name:    "NaN value",
			in:      "#gebe m 1 1 2\nu 0 NaN 1\nv 0 1 2\n",
			wantErr: "non-finite",
		},
		{
			name:    "positive Inf value",
			in:      "#gebe m 1 1 2\nu 0 +Inf 1\nv 0 1 2\n",
			wantErr: "non-finite",
		},
		{
			name:    "negative Inf value",
			in:      "#gebe m 1 1 2\nu 0 1 2\nv 0 -Inf 2\n",
			wantErr: "non-finite",
		},
		{
			name:    "duplicate u row",
			in:      "#gebe m 2 1 2\nu 0 1 2\nu 0 3 4\nu 1 5 6\nv 0 7 8\n",
			wantErr: "duplicate u row 0",
		},
		{
			name:    "duplicate v row",
			in:      "#gebe m 1 2 2\nu 0 1 2\nv 1 3 4\nv 1 5 6\nv 0 7 8\n",
			wantErr: "duplicate v row 1",
		},
		{
			name:    "truncated u side",
			in:      "#gebe m 3 1 2\nu 0 1 2\nu 1 3 4\nv 0 5 6\n",
			wantErr: "truncated embedding: 2 of 3 u rows",
		},
		{
			name:    "truncated v side (stream cut mid-file)",
			in:      "#gebe m 1 4 2\nu 0 1 2\nv 0 1 2\nv 1 3 4\n",
			wantErr: "truncated embedding: 2 of 4 v rows",
		},
		{
			name:    "rows only from header",
			in:      "#gebe m 1 1 2\n",
			wantErr: "truncated",
		},
		{
			name:    "short row",
			in:      "#gebe m 1 1 2\nu 0 1\nv 0 1 2\n",
			wantErr: "want 4 fields",
		},
		{
			name:    "overlong row",
			in:      "#gebe m 1 1 2\nu 0 1 2 3\nv 0 1 2\n",
			wantErr: "want 4 fields",
		},
		{
			name:    "header dimension overflow",
			in:      "#gebe m 4611686018427387904 1 4\n",
			wantErr: "overflow",
		},
		{
			name:    "non-finite sigma_scale meta",
			in:      "#gebe m 1 1 2\n#meta sigma_scale NaN\nu 0 1 2\nv 0 1 2\n",
			wantErr: "bad #meta sigma_scale",
		},
		{
			name:    "non-finite values meta",
			in:      "#gebe m 1 1 2\n#meta values 1 +Inf\nu 0 1 2\nv 0 1 2\n",
			wantErr: "bad #meta values",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadEmbedding(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("input accepted:\n%s", tc.in)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}

	// Rows may arrive in any order and interleaved across sides; a
	// complete, finite file must still load.
	ok := "#gebe m 2 2 2\nv 1 1 2\nu 1 3 4\nv 0 5 6\nu 0 7 8\n"
	e, err := ReadEmbedding(strings.NewReader(ok))
	if err != nil {
		t.Fatalf("interleaved complete embedding rejected: %v", err)
	}
	if e.U.At(1, 0) != 3 || e.V.At(0, 1) != 6 {
		t.Errorf("rows landed wrong: U=%v V=%v", e.U, e.V)
	}
}
